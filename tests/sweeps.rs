//! Test-first golden harness for the sensitivity-sweep subsystem.
//!
//! Every registered study is pinned three ways:
//!
//! 1. **Goldens** — the quick-mode, single-workload CSV of each study is
//!    byte-compared against `tests/goldens/<study>.csv`. The simulators
//!    are pure functions of their job keys, so these are stable across
//!    hosts; a mismatch means the physics (or the report layout)
//!    changed. Regenerate deliberately with
//!    `CONFLUENCE_REGOLD=1 cargo test` and review the diff — and bump
//!    `SCHEMA_VERSION` if stored results changed meaning.
//! 2. **Warm-store re-run** — a fresh engine over the same store must
//!    execute zero simulations and render byte-identical reports.
//! 3. **Properties** — monotonicity/ordering along every axis: more
//!    SHIFT history never reduces L1-I coverage, bigger bundles/overflow
//!    never reduce BTB coverage, Ideal >= Confluence >= Baseline IPC at
//!    every core count, and BTB MPKI never rises with capacity.
//!
//! The engine-contention stress test at the bottom closes PR 1's open
//! item: the original container was single-core, so the exactly-once
//! cache had never been hammered from genuinely concurrent requesters.

use std::path::PathBuf;

use confluence::sim::report::Report;
use confluence::sim::sweeps::{self, SweepAxis, SweepSpec};
use confluence::sim::{experiments::ExperimentConfig, SimEngine};
use confluence::store::ResultStore;
use confluence::trace::Workload;

/// The workload the goldens pin (the first in presentation order).
const GOLDEN_WORKLOAD: Workload = Workload::OltpDb2;

/// One workload keeps the harness fast; jobs are per-workload pure, so
/// this pins exactly the rows a full run would produce for it.
fn golden_engine(cfg: &ExperimentConfig) -> SimEngine {
    SimEngine::new(vec![(
        GOLDEN_WORKLOAD,
        cfg.workload_program(GOLDEN_WORKLOAD),
    )])
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// Compares `actual` against the committed golden, or rewrites it when
/// `CONFLUENCE_REGOLD` is set.
fn check_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(format!("{name}.csv"));
    if std::env::var_os("CONFLUENCE_REGOLD").is_some() {
        std::fs::create_dir_all(goldens_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "golden mismatch for study '{name}' — if the change is intentional, \
         regenerate with CONFLUENCE_REGOLD=1 cargo test and review the diff"
    );
}

/// Percentage cell (`"93.4%"`) back to a float.
fn pct_cell(cell: &str) -> f64 {
    cell.trim_end_matches('%')
        .parse()
        .unwrap_or_else(|e| panic!("bad percentage cell {cell:?}: {e}"))
}

fn num_cell(cell: &str) -> f64 {
    cell.parse()
        .unwrap_or_else(|e| panic!("bad numeric cell {cell:?}: {e}"))
}

/// The per-axis property checks, applied to one rendered study report.
fn check_properties(spec: &SweepSpec, report: &Report) {
    let rows = report.rows();
    assert!(!rows.is_empty(), "{}: no rows", spec.name);
    match &spec.axis {
        SweepAxis::HistoryEntries(points) => {
            for row in rows {
                let cov: Vec<f64> = row[1..].iter().map(|c| pct_cell(c)).collect();
                assert_eq!(cov.len(), points.len());
                for w in cov.windows(2) {
                    assert!(
                        w[1] >= w[0],
                        "{}: more history reduced coverage ({row:?})",
                        spec.name
                    );
                }
            }
        }
        SweepAxis::BundleGeometry(points) => {
            for row in rows {
                let cov: Vec<f64> = row[1..].iter().map(|c| pct_cell(c)).collect();
                // Coverage must not drop when one geometry dominates
                // another (>= in every dimension of the triple).
                for (i, a) in points.iter().enumerate() {
                    for (j, b) in points.iter().enumerate() {
                        if a.0 >= b.0 && a.1 >= b.1 && a.2 >= b.2 {
                            assert!(
                                cov[i] >= cov[j],
                                "{}: geometry {a:?} covers less than dominated {b:?} ({row:?})",
                                spec.name
                            );
                        }
                    }
                }
            }
        }
        SweepAxis::Cores(points) => {
            // Rows come in SCALING_DESIGNS order per workload:
            // Baseline, Confluence, Ideal.
            for rows3 in rows.chunks(sweeps::SCALING_DESIGNS.len()) {
                let [base, conf, ideal] = rows3 else {
                    panic!("{}: ragged design group {rows3:?}", spec.name)
                };
                for col in 2..2 + points.len() {
                    let (b, c, i) = (
                        num_cell(&base[col]),
                        num_cell(&conf[col]),
                        num_cell(&ideal[col]),
                    );
                    assert!(
                        i >= c && c >= b,
                        "{}: IPC ordering Ideal {i} >= Confluence {c} >= Baseline {b} \
                         violated at {}",
                        spec.name,
                        report.headers()[col]
                    );
                }
            }
        }
        SweepAxis::BtbCapacity(points) => {
            for row in rows {
                let mpki: Vec<f64> = row[1..].iter().map(|c| num_cell(c)).collect();
                assert_eq!(mpki.len(), points.len());
                for w in mpki.windows(2) {
                    assert!(
                        w[1] <= w[0],
                        "{}: larger BTB raised MPKI ({row:?})",
                        spec.name
                    );
                }
            }
        }
        SweepAxis::L1iSizeKb(points) => {
            for row in rows {
                let mpki: Vec<f64> = row[1..].iter().map(|c| num_cell(c)).collect();
                assert_eq!(mpki.len(), points.len());
                for w in mpki.windows(2) {
                    assert!(
                        w[1] <= w[0],
                        "{}: a larger L1-I raised demand MPKI ({row:?})",
                        spec.name
                    );
                }
            }
        }
        SweepAxis::ShiftLookahead(points) => {
            // Coverage grows with depth until the stream runs usefully
            // ahead of fetch; past that, deeper speculation can pollute
            // the L1-I. So: monotone non-decreasing up to the engine's
            // default depth, and points beyond it may regress only within
            // a small pollution band of the peak.
            for row in rows {
                let cov: Vec<f64> = row[1..].iter().map(|c| pct_cell(c)).collect();
                assert_eq!(cov.len(), points.len());
                let mut peak = f64::MIN;
                for (i, (&depth, &c)) in points.iter().zip(&cov).enumerate() {
                    if depth <= confluence::prefetch::DEFAULT_LOOKAHEAD && i > 0 {
                        assert!(
                            c >= cov[i - 1],
                            "{}: coverage fell below-default-depth ({row:?})",
                            spec.name
                        );
                    }
                    assert!(
                        c >= peak - 2.0,
                        "{}: depth {depth} regressed more than the 2pp \
                         pollution band below the peak ({row:?})",
                        spec.name
                    );
                    peak = peak.max(c);
                }
            }
        }
    }
}

/// A disposable store directory under the system temp dir.
struct StoreDir(PathBuf);

impl StoreDir {
    fn new(tag: &str) -> StoreDir {
        let path =
            std::env::temp_dir().join(format!("confluence-sweeps-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        StoreDir(path)
    }

    fn open(&self) -> ResultStore {
        ResultStore::open(&self.0, confluence::sim::SCHEMA_VERSION).expect("temp dir writable")
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The whole harness in one pass so every study's simulations run once:
/// cold run → goldens + properties + CSV re-parse; warm run (fresh
/// engine, same store) → zero executions, byte-identical reports.
#[test]
fn sweep_studies_match_goldens_hold_properties_and_rerun_warm() {
    let cfg = ExperimentConfig::quick();
    let dir = StoreDir::new("golden");
    let studies = sweeps::registry();
    assert!(studies.len() >= 3, "registry must name at least 3 studies");

    let cold = golden_engine(&cfg).with_store(dir.open());
    let jobs: Vec<_> = studies.iter().flat_map(|s| s.jobs(&cold, &cfg)).collect();
    let unique = confluence::sim::experiments::unique_jobs(&jobs) as u64;
    cold.run(&jobs);
    assert_eq!(cold.stats().executed, unique, "cold run simulates all");

    let mut cold_csv = Vec::new();
    for spec in &studies {
        let report = spec.report(&cold, &cfg);
        let csv = report.to_csv();
        check_golden(spec.name, &csv);
        check_properties(spec, &report);
        // Goldens are pinned by the byte comparison above; separately,
        // the rendering must survive the `from_csv` round trip so CSV
        // output stays machine-consumable.
        assert_eq!(
            Report::from_csv(&csv).as_ref(),
            Some(&report),
            "{}: CSV does not round-trip",
            spec.name
        );
        cold_csv.push(csv);
    }
    assert_eq!(
        cold.stats().executed,
        unique,
        "formatting must not re-simulate"
    );

    // Warm re-run: a fresh engine (fresh process, in spirit) over the
    // same store serves every point from disk, byte-identically.
    let warm = golden_engine(&cfg).with_store(dir.open());
    let warm_csv: Vec<String> = studies
        .iter()
        .map(|s| s.report(&warm, &cfg).to_csv())
        .collect();
    let stats = warm.stats();
    assert_eq!(stats.executed, 0, "warm sweep must execute nothing");
    assert_eq!(stats.disk_hits, unique, "every unique point from disk");
    assert_eq!(warm_csv, cold_csv, "warm reports must be byte-identical");
}

/// Overlapping sweep-shaped job lists hammered at one engine from many
/// OS threads (each `run` also spawns its own worker pool): the
/// content-keyed cache must hold the exactly-once guarantee under real
/// contention, not just on PR 1's single-core container.
#[test]
fn engine_contention_stress_executes_each_sweep_job_exactly_once() {
    let cfg = ExperimentConfig::quick();
    // Two studies that overlap on the baseline coverage job.
    let history = SweepSpec {
        name: "stress-history",
        caption: "stress",
        axis: SweepAxis::HistoryEntries(vec![4 * 1024, 32 * 1024]),
    };
    let geometry = SweepSpec {
        name: "stress-geometry",
        caption: "stress",
        axis: SweepAxis::BundleGeometry(vec![(512, 3, 32), (512, 4, 32)]),
    };
    let workloads = [Workload::WebFrontend];
    let a = history.jobs_for(&workloads, &cfg);
    let b = geometry.jobs_for(&workloads, &cfg);
    let all: Vec<_> = a.iter().chain(b.iter()).cloned().collect();
    let unique = confluence::sim::experiments::unique_jobs(&all) as u64;
    assert!(
        unique < all.len() as u64,
        "the studies must overlap for the stress to exercise sharing"
    );

    let program = cfg.workload_program(Workload::WebFrontend);
    let engine = SimEngine::new(vec![(Workload::WebFrontend, program)]).with_threads(4);

    let hammers = 8;
    std::thread::scope(|scope| {
        for t in 0..hammers {
            let engine = &engine;
            let (a, b, all) = (&a, &b, &all);
            scope.spawn(move || {
                // Different threads lead with different (overlapping)
                // batches so claims collide from every direction.
                match t % 3 {
                    0 => engine.run(a),
                    1 => engine.run(b),
                    _ => engine.run(all),
                }
                engine.run(all);
            });
        }
    });

    let stats = engine.stats();
    assert_eq!(
        stats.executed, unique,
        "every unique sweep job must execute exactly once under contention"
    );
    assert_eq!(stats.disk_hits, 0);
    assert_eq!(
        stats.hits,
        stats.requests - stats.executed,
        "all surplus requests must be served as cache hits"
    );
}
