//! Tick-equivalence suite for the core-grain parallel CMP executor.
//!
//! The two-phase deterministic tick promises that a timing run's result
//! is a pure function of `(program, design, config)` — the shard count
//! only buys wall-clock. These tests pin that promise three ways:
//!
//! 1. **Bit-identity across shard counts** — the same run at 1, 2, and 8
//!    shard threads produces identical `CoreStats` for every core and the
//!    same total cycle count.
//! 2. **Contention stress** — many OS threads running sharded simulations
//!    of the same program concurrently (each spawning its own shard
//!    workers) all agree with the serial reference.
//! 3. **Engine-level lending** — an engine that lends idle workers to
//!    timing jobs as core shards renders byte-identical results to a
//!    fully serial engine, and schedules expensive jobs without breaking
//!    the exactly-once contract.

use confluence::sim::{
    experiments, simulate_cmp_with_shards, DesignPoint, Job, SimEngine, TimingConfig, TimingJob,
};
use confluence::trace::{Program, WorkloadSpec};
use confluence_uarch::MemParams;

/// Debug builds simulate ~10x slower; the equivalence properties are
/// size-independent, so scale the windows down there and keep the
/// release/CI runs at a working set that genuinely pressures the shared
/// structures.
const INSTRS: u64 = if cfg!(debug_assertions) {
    8_000
} else {
    25_000
};

fn quick_cfg(cores: usize) -> TimingConfig {
    TimingConfig {
        cores,
        warmup_instrs: INSTRS,
        measure_instrs: INSTRS,
        mem: MemParams {
            cores: cores.max(4),
            ..MemParams::default()
        },
        ..TimingConfig::default()
    }
}

/// Shard-count invariance over a working set that actually exercises the
/// shared LLC and the shared SHIFT history (Confluence prefetches through
/// both; the Baseline covers the no-prefetch path; Ideal covers the
/// perfect-L1-I path that skips fills entirely).
#[test]
fn core_grain_stepping_is_bit_identical_at_any_shard_count() {
    let code_kb = if cfg!(debug_assertions) { 96 } else { 256 };
    let program = Program::generate(&WorkloadSpec::base().with_code_kb(code_kb)).unwrap();
    let cfg = quick_cfg(4);
    for design in [
        DesignPoint::Baseline,
        DesignPoint::Confluence,
        DesignPoint::Ideal,
    ] {
        let serial = simulate_cmp_with_shards(&program, design, &cfg, 1);
        assert!(serial.ipc() > 0.05, "{design:?}: degenerate run");
        for shards in [2, 8] {
            let sharded = simulate_cmp_with_shards(&program, design, &cfg, shards);
            assert_eq!(
                serial.per_core, sharded.per_core,
                "{design:?}: per-core stats diverged at {shards} shard threads"
            );
            assert_eq!(
                serial.total_cycles, sharded.total_cycles,
                "{design:?}: cycle count diverged at {shards} shard threads"
            );
        }
    }
}

/// An absurd shard request (more threads than cores exist) clamps instead
/// of deadlocking or diverging.
#[test]
fn oversized_shard_requests_clamp() {
    let program = Program::generate(&WorkloadSpec::tiny()).unwrap();
    let cfg = quick_cfg(2);
    let serial = simulate_cmp_with_shards(&program, DesignPoint::Baseline, &cfg, 1);
    let absurd = simulate_cmp_with_shards(&program, DesignPoint::Baseline, &cfg, 64);
    assert_eq!(serial, absurd);
}

/// Contention-style stress: 8 OS threads each drive a sharded simulation
/// of the same `Arc`-shared program at a different shard count, all at
/// once — every spin barrier, history `RwLock`, and core mutex in the
/// executor gets hammered while neighbours do the same — and every
/// result must equal the serial reference.
#[test]
fn concurrent_sharded_runs_agree_with_serial() {
    let program = Program::generate(&WorkloadSpec::tiny()).unwrap();
    let cfg = quick_cfg(4);
    let reference = simulate_cmp_with_shards(&program, DesignPoint::Confluence, &cfg, 1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let (program, cfg) = (&program, &cfg);
                scope.spawn(move || {
                    simulate_cmp_with_shards(program, DesignPoint::Confluence, cfg, 1 + t % 4)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(
                h.join().expect("stress thread panicked"),
                reference,
                "a contended sharded run diverged from the serial reference"
            );
        }
    });
}

/// The engine's cost-aware scheduling and shard lending end-to-end: a
/// wide engine running a timing-heavy batch (where lending kicks in at
/// the tail and for direct fetches) must agree byte-for-byte with a
/// serial engine, keep the exactly-once contract, and rank timing jobs
/// as the expensive ones.
#[test]
fn lending_engine_matches_serial_engine() {
    let cfg = experiments::ExperimentConfig::quick();
    let workloads: Vec<_> = cfg.workloads().into_iter().take(1).collect();
    let designs = [
        DesignPoint::Baseline,
        DesignPoint::Confluence,
        DesignPoint::Ideal,
    ];
    let jobs: Vec<Job> = designs
        .iter()
        .map(|&design| {
            Job::Timing(TimingJob {
                workload: workloads[0].0,
                design,
                cfg: quick_cfg(4),
            })
        })
        .collect();
    for job in &jobs {
        assert!(
            job.cost_hint()
                > Job::Coverage(confluence::sim::CoverageJob {
                    workload: workloads[0].0,
                    btb: confluence::sim::BtbSpec::Baseline1k,
                    opts: Default::default(),
                })
                .cost_hint(),
            "timing jobs must rank above coverage jobs"
        );
    }

    let lending = SimEngine::new(workloads.clone()).with_threads(4);
    let serial = SimEngine::new(workloads).with_threads(1);
    lending.run(&jobs);
    serial.run(&jobs);
    assert_eq!(lending.stats().executed, jobs.len() as u64);
    assert_eq!(serial.stats().executed, jobs.len() as u64);
    for job in &jobs {
        let Job::Timing(t) = job else { unreachable!() };
        assert_eq!(
            lending.timing(t),
            serial.timing(t),
            "lending must never change a timing result"
        );
    }
}
