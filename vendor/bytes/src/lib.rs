//! Offline shim for `bytes`: the subset of the API used by the trace
//! serializer (`Buf` reads over `&[u8]`, `BufMut` writes into `BytesMut`,
//! and `BytesMut::freeze` into an immutable `Bytes`). Semantics match the
//! real crate for this subset; swap back to crates.io `bytes` when the
//! registry is reachable.

use std::ops::Deref;

/// Read cursor over a byte source. Implemented for `&[u8]`, which advances
/// by re-slicing, exactly like the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Returns the readable bytes.
    fn chunk(&self) -> &[u8];

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append-only write interface.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte buffer; dereferences to `[u8]`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u8_u64() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 9);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!(!r.has_remaining());
    }
}
