//! Offline shim for `criterion`.
//!
//! Implements the macro and builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `Bencher::iter` and
//! `Bencher::iter_batched` — over a plain wall-clock harness: each
//! benchmark runs one warm-up iteration plus `sample_size` timed samples
//! and prints the median sample time per iteration (and derived
//! throughput) — the median rather than the mean because shared hosts
//! see multi-millisecond scheduler freezes that poison a mean but leave
//! the majority of samples untouched. There are no further statistical
//! refinements; swap this shim for the real `criterion` when the
//! registry is reachable.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batches are sized in `iter_batched` (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after one warm-up call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {id:<44} (no measurements)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {id:<44} median {median:>12.3?}{rate}");
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
