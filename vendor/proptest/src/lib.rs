//! Offline shim for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the slice of proptest's API the workspace's property tests
//! use: the `proptest!`/`prop_assert*`/`prop_oneof!` macros, `Strategy`
//! with `prop_map`, `any`, `Just`, integer-range strategies, tuples,
//! `collection::vec`, and `option::of`.
//!
//! Sampling is fully deterministic (the RNG is seeded from the test name),
//! so failures reproduce exactly. There is no shrinking: a failing case
//! reports the case index and the assertion message. Swap this shim for the
//! real `proptest = "1"` when the registry is reachable; the test sources
//! are already written against the real API.

use std::marker::PhantomData;
use std::rc::Rc;

/// Number of cases each property runs.
pub const CASES: usize = 48;

/// Deterministic splitmix64 generator used for sampling.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = Rc::new(self);
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.sample(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (see `prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Vector with a length drawn from `len` and elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `Vec`s of `element` values with lengths in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// String strategies (`proptest::string`).
pub mod string {
    use super::{Strategy, TestRng};

    /// Strategy for strings matching the supported regex subset.
    pub struct RegexGeneratorStrategy {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let span = (self.max - self.min + 1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len)
                .map(|_| self.chars[rng.below(self.chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Mirrors `proptest::string::string_regex` for the subset the
    /// workspace uses: a single character class with optional `a-z`
    /// ranges, followed by a `{min,max}` repetition — e.g.
    /// `[A-Za-z0-9 ._%+-]{0,12}`. Anything else is an `Err`, like the
    /// real API's parse failure.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let unsupported = || format!("shim string_regex cannot parse {pattern:?}");
        let rest = pattern.strip_prefix('[').ok_or_else(unsupported)?;
        let (class, rep) = rest.split_once(']').ok_or_else(unsupported)?;
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            // `a-z` range when '-' sits between two chars; a trailing or
            // leading '-' is a literal.
            if it.peek() == Some(&'-') {
                let mut ahead = it.clone();
                ahead.next();
                if let Some(&end) = ahead.peek() {
                    it = ahead;
                    it.next();
                    (c..=end).for_each(|ch| chars.push(ch));
                    continue;
                }
            }
            chars.push(c);
        }
        if chars.is_empty() {
            return Err(unsupported());
        }
        let rep = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(unsupported)?;
        let (min, max) = rep.split_once(',').ok_or_else(unsupported)?;
        let min: usize = min.parse().map_err(|_| unsupported())?;
        let max: usize = max.parse().map_err(|_| unsupported())?;
        if max < min {
            return Err(unsupported());
        }
        Ok(RegexGeneratorStrategy { chars, min, max })
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Half `None`, half `Some(inner)`.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Strategy for `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` (the attribute is written at the call site)
/// running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("property {} failed at case {}: {}", stringify!($name), case, msg);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(
                format!("{:?} != {:?} ({})", left, right, stringify!($left == $right)),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(
                format!("{:?} == {:?} ({})", left, right, stringify!($left != $right)),
            );
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, n in 1usize..4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 2)) {
            prop_assert!(v == 2 || v == 4, "unexpected {v}");
        }

        #[test]
        fn collections_respect_length(v in prop::collection::vec(any::<bool>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }
    }

    #[test]
    fn string_regex_respects_class_and_repetition() {
        let strat = crate::string::string_regex("[a-c_]{2,5}").unwrap();
        let mut rng = crate::TestRng::deterministic("string_regex");
        for _ in 0..64 {
            let s = crate::Strategy::sample(&strat, &mut rng);
            assert!((2..=5).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_')), "{s:?}");
        }
        assert!(crate::string::string_regex("plain").is_err());
        assert!(crate::string::string_regex("[]{1,2}").is_err());
        assert!(crate::string::string_regex("[ab]{5,1}").is_err());
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
