//! Offline shim for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! just enough of serde's surface for the workspace to compile: the trait
//! names and the derive macros (which expand to nothing). Replace this
//! vendored shim with the real `serde = { version = "1", features =
//! ["derive"] }` once the registry is reachable; no source changes are
//! needed, the annotations are already in place.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
