//! Offline shim for `serde_derive`: the derives are accepted and expand to
//! nothing. The workspace only uses serde derives as annotations (no code
//! path serializes through serde yet), so marker-trait impls are emitted by
//! the `serde` shim's blanket impls instead of per-type generated code.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
